package mesi

import (
	"fmt"

	"crossingguard/internal/cacheset"
	"crossingguard/internal/coherence"
	"crossingguard/internal/mem"
	"crossingguard/internal/network"
	"crossingguard/internal/sim"
)

// l1Line is the protocol payload of one L1 cache line.
type l1Line struct {
	state  L1State
	data   *mem.Block
	dirty  bool             // modified relative to the L2
	needed int              // responses to await for a GetM (-1 = unknown)
	got    int              // responses received so far
	op     *coherence.Msg   // CPU operation driving the open transaction
	fwds   []*coherence.Msg // forwards queued until the line stabilizes
}

// L1 is a private MESI L1 cache attached to the shared L2.
type L1 struct {
	id   coherence.NodeID
	name string
	eng  *sim.Engine
	fab  *network.Fabric
	cfg  Config
	l2   coherence.NodeID
	sink coherence.ErrorSink

	cache *cacheset.Cache[l1Line]
	// wb holds lines evicted but awaiting a writeback ack (MI_A / II_A);
	// this models the writeback buffer / MSHR of a real L1.
	wb map[mem.Addr]*l1Line
	// waitingOps queues CPU operations that hit a line with an open
	// transaction (e.g. an address being written back).
	waitingOps map[mem.Addr][]*coherence.Msg
	// stalledOps holds CPU operations that could not allocate a line
	// because every way in the set was transient.
	stalledOps []*coherence.Msg

	// Cov records (state, event) coverage for the stress-test report.
	Cov *coherence.Coverage
}

// NewL1 builds and registers an L1.
func NewL1(id coherence.NodeID, name string, eng *sim.Engine, fab *network.Fabric,
	l2 coherence.NodeID, cfg Config, sink coherence.ErrorSink) *L1 {
	l := &L1{
		id: id, name: name, eng: eng, fab: fab, cfg: cfg, l2: l2, sink: sink,
		cache:      cacheset.New[l1Line](cfg.L1Sets, cfg.L1Ways),
		wb:         make(map[mem.Addr]*l1Line),
		waitingOps: make(map[mem.Addr][]*coherence.Msg),
		Cov:        NewL1Coverage(),
	}
	fab.Register(l)
	return l
}

// NewL1Coverage declares the (state, event) pairs we believe reachable for
// an L1, mirroring the paper's coverage accounting (§4.1). Pairs that are
// declared but never visited are reported, not failed; visiting an
// undeclared pair is flagged as unexpected.
func NewL1Coverage() *coherence.Coverage {
	cov := coherence.NewCoverage("mesi.L1")
	type pe struct{ s, e string }
	pairs := []pe{
		// CPU events.
		{"I", evLoad}, {"I", evStore},
		{"S", evLoad}, {"S", evStore},
		{"E", evLoad}, {"E", evStore},
		{"M", evLoad}, {"M", evStore},
		{"S", evReplacement}, {"E", evReplacement}, {"M", evReplacement},
		// Data/ack responses.
		{"IS_D", "M:DataE"}, {"IS_D", "M:DataS"}, {"IS_D", "M:DataOwner"},
		{"IM_AD", "M:DataAcks"}, {"IM_AD", "M:DataOwner"}, {"IM_AD", "M:InvAck"},
		{"IM_A", "M:InvAck"}, {"IM_A", "M:DataOwner"},
		{"SM_AD", "M:DataAcks"}, {"SM_AD", "M:DataOwner"}, {"SM_AD", "M:InvAck"},
		{"SM_A", "M:InvAck"}, {"SM_A", "M:DataOwner"},
		{"MI_A", "M:WBAck"}, {"II_A", "M:WBAck"},
		// Host requests.
		{"S", "M:Inv"}, {"I", "M:Inv"}, {"IS_D", "M:Inv"},
		{"IM_AD", "M:Inv"}, {"SM_AD", "M:Inv"},
		{"M", "M:FwdGetS"}, {"E", "M:FwdGetS"}, {"MI_A", "M:FwdGetS"},
		{"M", "M:FwdGetM"}, {"E", "M:FwdGetM"}, {"MI_A", "M:FwdGetM"},
		// An evicting owner can be recorded as a sharer after answering
		// a Fwd_GetS from MI_A; a later GetM then invalidates it.
		{"MI_A", "M:Inv"}, {"II_A", "M:Inv"},
		{"S", "M:InvToL2"}, {"E", "M:InvToL2"}, {"M", "M:InvToL2"},
		{"I", "M:InvToL2"}, {"MI_A", "M:InvToL2"},
		{"SM_AD", "M:InvToL2"}, {"IM_AD", "M:InvToL2"},
		// Defensive: buggy-accelerator responses surfaced by XG
		// (tolerated only with TxnMods).
		{"IS_D", "M:InvAck"},
		// Forwards queued while completing a GetM.
		{"IM_A", "M:FwdGetS"}, {"IM_A", "M:FwdGetM"},
		{"SM_A", "M:FwdGetS"}, {"SM_A", "M:FwdGetM"},
	}
	for _, p := range pairs {
		cov.Declare(p.s, p.e)
	}
	return cov
}

// ID implements coherence.Controller.
func (l *L1) ID() coherence.NodeID { return l.id }

// Name implements coherence.Controller.
func (l *L1) Name() string { return l.name }

// Recv implements coherence.Controller.
func (l *L1) Recv(m *coherence.Msg) {
	switch m.Type {
	case coherence.ReqLoad, coherence.ReqStore:
		l.handleCPU(m)
	case coherence.MDataE, coherence.MDataS, coherence.MDataAcks,
		coherence.MDataOwner, coherence.MInvAck, coherence.MWBAck:
		l.handleResponse(m)
	case coherence.MInv, coherence.MInvToL2, coherence.MFwdGetS, coherence.MFwdGetM:
		l.handleHostRequest(m)
	default:
		l.unexpected("?", m)
	}
}

// protocolError reports (with TxnMods) or panics (baseline) on an
// impossible transition; baselines crash because gem5-style protocols
// treat undefined transitions as fatal, which is exactly the fragility
// Crossing Guard exists to contain.
func (l *L1) protocolError(state string, m *coherence.Msg) {
	if l.cfg.TxnMods {
		l.sink.ReportError(coherence.ProtocolError{
			Where: l.name, Code: "HOST.L1.Unexpected", Addr: m.Addr,
			Detail: fmt.Sprintf("state %s event %v", state, m.Type),
		})
		return
	}
	panic(fmt.Sprintf("%s: unexpected %v in state %s", l.name, m, state))
}

func (l *L1) unexpected(state string, m *coherence.Msg) {
	l.Cov.Record(state, evName(m.Type))
	l.protocolError(state, m)
}

// stateOf returns the line's current view: the in-cache entry, the
// writeback-buffer entry, or nil (Invalid).
func (l *L1) lineFor(addr mem.Addr) *l1Line {
	if e := l.cache.Peek(addr); e != nil {
		return &e.V
	}
	if wl, ok := l.wb[addr.Line()]; ok {
		return wl
	}
	return nil
}

// --- CPU side ---

func (l *L1) handleCPU(m *coherence.Msg) {
	line := m.Addr.Line()
	if wl, ok := l.wb[line]; ok {
		// Address is mid-writeback; wait for the WBAck.
		_ = wl
		l.waitingOps[line] = append(l.waitingOps[line], m)
		return
	}
	e := l.cache.Lookup(m.Addr)
	if e != nil && !e.V.state.Stable() {
		l.waitingOps[line] = append(l.waitingOps[line], m)
		return
	}
	isStore := m.Type == coherence.ReqStore
	ev := evLoad
	if isStore {
		ev = evStore
	}
	if e == nil {
		l.Cov.Record("I", ev)
		e = l.allocate(m)
		if e == nil {
			return // stalled; will be replayed
		}
		if isStore {
			e.V.state = L1IMad
			e.V.needed = -1
			e.V.op = m
			l.send(&coherence.Msg{Type: coherence.MGetM, Addr: line, Src: l.id, Dst: l.l2})
		} else {
			e.V.state = L1ISd
			e.V.op = m
			l.send(&coherence.Msg{Type: coherence.MGetS, Addr: line, Src: l.id, Dst: l.l2})
		}
		return
	}
	st := e.V.state
	l.Cov.Record(st.String(), ev)
	switch {
	case !isStore: // load hit in S/E/M
		l.respond(m, e.V.data[m.Addr.Offset()])
	case st == L1M:
		e.V.data[m.Addr.Offset()] = m.Val
		e.V.dirty = true
		l.respond(m, 0)
	case st == L1E:
		e.V.state = L1M
		e.V.data[m.Addr.Offset()] = m.Val
		e.V.dirty = true
		l.respond(m, 0)
	case st == L1S:
		e.V.state = L1SMad
		e.V.needed = -1
		e.V.op = m
		l.send(&coherence.Msg{Type: coherence.MGetM, Addr: line, Src: l.id, Dst: l.l2})
	}
}

// allocate finds a way for m.Addr's line, evicting if necessary. It
// returns nil (and stalls m) when no way is evictable.
func (l *L1) allocate(m *coherence.Msg) *cacheset.Entry[l1Line] {
	e, victim, ok := l.cache.Allocate(m.Addr, func(e *cacheset.Entry[l1Line]) bool {
		return e.V.state.Stable()
	})
	if !ok {
		l.stalledOps = append(l.stalledOps, m)
		return nil
	}
	if victim != nil {
		l.evict(victim.Addr, &victim.V)
	}
	e.V = l1Line{state: L1I, needed: -1}
	return e
}

// evict starts replacement of a stable victim line.
func (l *L1) evict(addr mem.Addr, v *l1Line) {
	l.Cov.Record(v.state.String(), evReplacement)
	switch v.state {
	case L1S:
		// Exact sharer tracking: notify the L2, fire-and-forget.
		l.send(&coherence.Msg{Type: coherence.MPutS, Addr: addr, Src: l.id, Dst: l.l2})
	case L1E, L1M:
		l.wb[addr] = &l1Line{state: L1MIa, data: v.data, dirty: v.dirty}
		l.send(&coherence.Msg{Type: coherence.MPutM, Addr: addr, Src: l.id, Dst: l.l2,
			Data: v.data.Copy(), Dirty: v.dirty})
	default:
		panic(fmt.Sprintf("%s: evicting line in state %v", l.name, v.state))
	}
}

// respond completes a CPU operation after the hit latency.
func (l *L1) respond(op *coherence.Msg, val byte) {
	ty := coherence.RespLoad
	if op.Type == coherence.ReqStore {
		ty = coherence.RespStore
	}
	l.eng.Schedule(l.cfg.L1HitLat, func() {
		l.fab.Send(&coherence.Msg{Type: ty, Addr: op.Addr, Src: l.id, Dst: op.Src,
			Val: val, Tag: op.Tag})
	})
}

func (l *L1) send(m *coherence.Msg) { l.fab.Send(m) }

// blockOrZero guards against data-less messages from a misbehaving peer:
// a nil block is treated as zero data, matching Crossing Guard's recovery
// policy of supplying zero blocks.
func blockOrZero(b *mem.Block) *mem.Block {
	if b == nil {
		return mem.Zero()
	}
	return b
}

// --- responses (data, acks, writeback acks) ---

func (l *L1) handleResponse(m *coherence.Msg) {
	line := m.Addr.Line()
	if m.Type == coherence.MWBAck {
		wl, ok := l.wb[line]
		if !ok {
			l.unexpected("I", m)
			return
		}
		l.Cov.Record(wl.state.String(), evName(m.Type))
		delete(l.wb, line)
		l.settled(line)
		return
	}
	e := l.cache.Peek(m.Addr)
	if e == nil {
		l.unexpected("I", m)
		return
	}
	st := e.V.state
	l.Cov.Record(st.String(), evName(m.Type))
	switch st {
	case L1ISd:
		switch m.Type {
		case coherence.MDataE:
			l.completeGet(e, blockOrZero(m.Data), L1E)
		case coherence.MDataS, coherence.MDataOwner:
			l.completeGet(e, blockOrZero(m.Data), L1S)
		case coherence.MInvAck:
			// A buggy accelerator behind Crossing Guard answered a
			// Fwd_GetS with an InvAck; with the paper's host mods we
			// accept the ack as a (data-less) response.
			if !l.cfg.TxnMods {
				l.protocolError(st.String(), m)
				return
			}
			l.sink.ReportError(coherence.ProtocolError{Where: l.name,
				Code: "HOST.AckAsData", Addr: m.Addr,
				Detail: "InvAck accepted as GetS data (zero block)"})
			l.completeGet(e, mem.Zero(), L1S)
		default:
			l.protocolError(st.String(), m)
		}
	case L1IMad, L1SMad:
		switch m.Type {
		case coherence.MDataAcks:
			if m.Data != nil {
				e.V.data = m.Data.Copy()
				e.V.dirty = false
			}
			e.V.needed = m.Acks
			l.maybeCompleteGetM(e, m.Addr)
		case coherence.MDataOwner:
			// Ownership hand-off from the previous owner.
			e.V.data = blockOrZero(m.Data)
			e.V.dirty = m.Dirty
			e.V.got++
			l.maybeCompleteGetM(e, m.Addr)
		case coherence.MInvAck:
			e.V.got++
			l.maybeCompleteGetM(e, m.Addr)
		default:
			l.protocolError(st.String(), m)
		}
	case L1IMa, L1SMa:
		switch m.Type {
		case coherence.MInvAck:
			e.V.got++
			l.maybeCompleteGetM(e, m.Addr)
		case coherence.MDataOwner:
			// Owner hand-off whose "expect 1 response" notice from the
			// L2 arrived first.
			e.V.data = blockOrZero(m.Data)
			e.V.dirty = m.Dirty
			e.V.got++
			l.maybeCompleteGetM(e, m.Addr)
		default:
			l.protocolError(st.String(), m)
		}
	default:
		l.protocolError(st.String(), m)
	}
}

// completeGet finishes a GetS transaction.
func (l *L1) completeGet(e *cacheset.Entry[l1Line], data *mem.Block, st L1State) {
	op := e.V.op
	e.V.state = st
	e.V.data = data.Copy()
	e.V.dirty = false
	e.V.op = nil
	l.send(&coherence.Msg{Type: coherence.MUnblock, Addr: e.Addr, Src: l.id, Dst: l.l2})
	l.respond(op, e.V.data[op.Addr.Offset()])
	l.drainFwds(e)
	l.settled(e.Addr)
}

// maybeCompleteGetM finishes a GetM once the data and every expected
// response have arrived.
func (l *L1) maybeCompleteGetM(e *cacheset.Entry[l1Line], addr mem.Addr) {
	// Move to the "got data" transients for coverage fidelity.
	if e.V.needed >= 0 {
		switch e.V.state {
		case L1IMad:
			e.V.state = L1IMa
		case L1SMad:
			e.V.state = L1SMa
		}
	}
	if e.V.needed < 0 || e.V.got < e.V.needed {
		return
	}
	if e.V.data == nil {
		// All responses arrived but none carried data: only possible
		// when a buggy accelerator InvAcked instead of forwarding data.
		if !l.cfg.TxnMods {
			panic(fmt.Sprintf("%s: GetM for %v completed without data", l.name, e.Addr))
		}
		l.sink.ReportError(coherence.ProtocolError{Where: l.name,
			Code: "HOST.AckAsData", Addr: e.Addr,
			Detail: "GetM completed with zero block"})
		e.V.data = mem.Zero()
	}
	op := e.V.op
	e.V.state = L1M
	e.V.dirty = true
	e.V.needed = -1
	e.V.got = 0
	e.V.op = nil
	e.V.data[op.Addr.Offset()] = op.Val
	l.send(&coherence.Msg{Type: coherence.MUnblock, Addr: e.Addr, Src: l.id, Dst: l.l2})
	l.respond(op, 0)
	l.drainFwds(e)
	l.settled(e.Addr)
}

// --- host requests (invalidations, forwards) ---

func (l *L1) handleHostRequest(m *coherence.Msg) {
	line := m.Addr.Line()
	if wl, ok := l.wb[line]; ok {
		l.hostReqOnWB(line, wl, m)
		return
	}
	e := l.cache.Peek(m.Addr)
	st := L1I
	if e != nil {
		st = e.V.state
	}
	l.Cov.Record(st.String(), evName(m.Type))
	switch m.Type {
	case coherence.MInv:
		switch st {
		case L1S:
			l.cache.Invalidate(m.Addr)
			l.sendInvAck(m)
			l.settled(line)
		case L1I, L1ISd:
			// Raced with our PutS or our queued GetS; the S copy (if
			// any) is from an older epoch. Ack and carry on.
			l.sendInvAck(m)
		case L1IMad, L1SMad:
			// We were a sharer whose GetM is queued behind the
			// invalidating transaction; drop the stale S copy.
			if st == L1SMad {
				e.V.state = L1IMad
			}
			l.sendInvAck(m)
		default:
			l.protocolError(st.String(), m)
		}
	case coherence.MInvToL2:
		switch st {
		case L1S:
			l.cache.Invalidate(m.Addr)
			l.send(&coherence.Msg{Type: coherence.MInvAckToL2, Addr: line, Src: l.id, Dst: l.l2})
			l.settled(line)
		case L1E, L1M:
			l.send(&coherence.Msg{Type: coherence.MCopyToL2, Addr: line, Src: l.id, Dst: l.l2,
				Data: e.V.data.Copy(), Dirty: e.V.dirty})
			l.cache.Invalidate(m.Addr)
			l.settled(line)
		case L1I:
			l.send(&coherence.Msg{Type: coherence.MInvAckToL2, Addr: line, Src: l.id, Dst: l.l2})
		case L1SMad, L1IMad:
			// Recall of a line we are also trying to upgrade; our S
			// copy dies, our GetM stays queued.
			if st == L1SMad {
				e.V.state = L1IMad
			}
			l.send(&coherence.Msg{Type: coherence.MInvAckToL2, Addr: line, Src: l.id, Dst: l.l2})
		default:
			l.protocolError(st.String(), m)
		}
	case coherence.MFwdGetS:
		switch st {
		case L1E, L1M:
			l.send(&coherence.Msg{Type: coherence.MDataOwner, Addr: line, Src: l.id,
				Dst: m.Requestor, Data: e.V.data.Copy(), Dirty: e.V.dirty})
			l.send(&coherence.Msg{Type: coherence.MCopyToL2, Addr: line, Src: l.id, Dst: l.l2,
				Data: e.V.data.Copy(), Dirty: e.V.dirty})
			e.V.state = L1S
			e.V.dirty = false
			l.settled(line)
		case L1IMa, L1SMa:
			e.V.fwds = append(e.V.fwds, m)
		default:
			l.protocolError(st.String(), m)
		}
	case coherence.MFwdGetM:
		switch st {
		case L1E, L1M:
			l.send(&coherence.Msg{Type: coherence.MDataOwner, Addr: line, Src: l.id,
				Dst: m.Requestor, Data: e.V.data.Copy(), Dirty: e.V.dirty})
			l.cache.Invalidate(m.Addr)
			l.settled(line)
		case L1IMa, L1SMa:
			e.V.fwds = append(e.V.fwds, m)
		default:
			l.protocolError(st.String(), m)
		}
	}
}

// hostReqOnWB handles host requests that race with an outstanding
// writeback (the line lives in the writeback buffer).
func (l *L1) hostReqOnWB(line mem.Addr, wl *l1Line, m *coherence.Msg) {
	l.Cov.Record(wl.state.String(), evName(m.Type))
	switch m.Type {
	case coherence.MFwdGetS:
		if wl.state != L1MIa {
			l.protocolError(wl.state.String(), m)
			return
		}
		l.send(&coherence.Msg{Type: coherence.MDataOwner, Addr: line, Src: l.id,
			Dst: m.Requestor, Data: wl.data.Copy(), Dirty: wl.dirty})
		l.send(&coherence.Msg{Type: coherence.MCopyToL2, Addr: line, Src: l.id, Dst: l.l2,
			Data: wl.data.Copy(), Dirty: wl.dirty})
		// Remain MI_A: the WBAck for our Put is still coming.
	case coherence.MFwdGetM:
		if wl.state != L1MIa {
			l.protocolError(wl.state.String(), m)
			return
		}
		l.send(&coherence.Msg{Type: coherence.MDataOwner, Addr: line, Src: l.id,
			Dst: m.Requestor, Data: wl.data.Copy(), Dirty: wl.dirty})
		wl.state = L1IIa
	case coherence.MInvToL2:
		if wl.state != L1MIa {
			// II_A: ownership already handed off; just ack.
			l.send(&coherence.Msg{Type: coherence.MInvAckToL2, Addr: line, Src: l.id, Dst: l.l2})
			return
		}
		l.send(&coherence.Msg{Type: coherence.MCopyToL2, Addr: line, Src: l.id, Dst: l.l2,
			Data: wl.data.Copy(), Dirty: wl.dirty})
		wl.state = L1IIa
	case coherence.MInv:
		// We answered a Fwd_GetS while evicting, so the L2 recorded us
		// as a sharer; a later writer now invalidates that stale entry.
		l.sendInvAck(m)
	default:
		l.protocolError(wl.state.String(), m)
	}
}

func (l *L1) sendInvAck(m *coherence.Msg) {
	l.send(&coherence.Msg{Type: coherence.MInvAck, Addr: m.Addr.Line(), Src: l.id, Dst: m.Requestor})
}

// drainFwds replays forwards queued while a GetM was completing.
func (l *L1) drainFwds(e *cacheset.Entry[l1Line]) {
	fwds := e.V.fwds
	e.V.fwds = nil
	for _, f := range fwds {
		f := f
		l.eng.Schedule(0, func() { l.Recv(f) })
	}
}

// settled replays CPU operations blocked on this line and any operations
// stalled on allocation.
func (l *L1) settled(line mem.Addr) {
	if q := l.waitingOps[line]; len(q) > 0 {
		next := q[0]
		if len(q) == 1 {
			delete(l.waitingOps, line)
		} else {
			l.waitingOps[line] = q[1:]
		}
		l.eng.Schedule(0, func() { l.handleCPU(next) })
	}
	if len(l.stalledOps) > 0 {
		stalled := l.stalledOps
		l.stalledOps = nil
		for _, op := range stalled {
			op := op
			l.eng.Schedule(0, func() { l.handleCPU(op) })
		}
	}
}

// Outstanding reports open transactions (for deadlock detection).
func (l *L1) Outstanding() int {
	n := len(l.wb) + len(l.stalledOps)
	for _, q := range l.waitingOps {
		n += len(q)
	}
	l.cache.Visit(func(e *cacheset.Entry[l1Line]) {
		if !e.V.state.Stable() {
			n++
		}
	})
	return n
}

// AuditLine reports this L1's stable view of a line for the SWMR
// invariant checker: (hasCopy, exclusive, data, dirty).
func (l *L1) AuditLine(addr mem.Addr) (bool, bool, *mem.Block, bool) {
	e := l.cache.Peek(addr)
	if e == nil || !e.V.state.Stable() || e.V.state == L1I {
		return false, false, nil, false
	}
	excl := e.V.state == L1E || e.V.state == L1M
	return true, excl, e.V.data, e.V.dirty
}

// VisitStable reports every stable valid line for invariant checks.
func (l *L1) VisitStable(fn func(addr mem.Addr, st L1State, data *mem.Block, dirty bool)) {
	l.cache.Visit(func(e *cacheset.Entry[l1Line]) {
		if e.V.state.Stable() && e.V.state != L1I {
			fn(e.Addr, e.V.state, e.V.data, e.V.dirty)
		}
	})
}

// WBPending reports buffered writebacks (zero at quiesce).
func (l *L1) WBPending() int { return len(l.wb) }
