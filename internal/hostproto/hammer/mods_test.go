package hammer

import (
	"strings"
	"testing"

	"crossingguard/internal/coherence"
	"crossingguard/internal/seq"
)

// forge injects a raw protocol message, standing in for state corrupted
// by a misbehaving accelerator upstream of the directory.
func forge(s *System, m *coherence.Msg) {
	s.Fab.Send(m)
}

// TestUnexpectedNackSunkWithMods: paper §3.2.1 — "we modify the host
// L1/L2 caches to sink unexpected Nacks and generate an error".
func TestUnexpectedNackSunkWithMods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TxnMods = true
	s := NewSystem(2, cfg, 1)
	s.Seqs[0].Store(0x1000, 1, nil)
	s.Eng.RunUntilQuiet()
	// A Nack out of nowhere, aimed at a cache in stable state.
	forge(s, &coherence.Msg{Type: coherence.HNack, Addr: 0x1000, Src: NodeDir, Dst: s.Caches[0].ID()})
	s.Eng.RunUntilQuiet()
	if s.Caches[0].NacksSunk != 1 {
		t.Fatalf("NacksSunk = %d, want 1", s.Caches[0].NacksSunk)
	}
	if s.Log.ByCode["HOST.UnexpectedNack"] != 1 {
		t.Fatalf("error log: %v", s.Log.ByCode)
	}
	// The cache remains fully functional.
	var got byte
	s.Seqs[0].Load(0x1000, func(op *seq.Op) { got = op.Result })
	s.Eng.RunUntilQuiet()
	if got != 1 {
		t.Fatalf("post-nack load = %d", got)
	}
}

// TestUnexpectedNackPanicsBaseline: without the modification, the
// unmodified protocol treats it as an undefined transition and dies —
// exactly the fragility the paper's change removes.
func TestUnexpectedNackPanicsBaseline(t *testing.T) {
	cfg := DefaultConfig() // TxnMods off
	s := NewSystem(1, cfg, 2)
	s.Seqs[0].Store(0x1000, 1, nil)
	s.Eng.RunUntilQuiet()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("baseline accepted an unexpected Nack")
		}
		if !strings.Contains(r.(string), "Nack") {
			t.Fatalf("panic = %v", r)
		}
	}()
	forge(s, &coherence.Msg{Type: coherence.HNack, Addr: 0x1000, Src: NodeDir, Dst: s.Caches[0].ID()})
	s.Eng.RunUntilQuiet()
}

// TestGetSOnlyNeverGrantsExclusive: the §3.2.1 non-upgradable request —
// "we add a non-upgradable GetS only request".
func TestGetSOnlyNeverGrantsExclusive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TxnMods = true
	s := NewSystem(2, cfg, 3)
	// Issue a GetSOnly directly from cache 0's protocol engine by
	// forging the request path: simplest is via the directory message,
	// but the cache must track it; instead drive a plain load and then
	// verify the guard-facing property at the directory level with a
	// forged GetSOnly from cache 1.
	s.Seqs[0].Store(0x2000, 9, nil)
	s.Eng.RunUntilQuiet()
	// CPU caches never issue GetSOnly themselves (only the guard does),
	// so drive the directory protocol directly: request, then the
	// shared-unblock a GetSOnly requestor always sends.
	forge(s, &coherence.Msg{Type: coherence.HGetSOnly, Addr: 0x2000, Src: s.Caches[1].ID(), Dst: NodeDir})
	s.Eng.RunUntil(s.Eng.Now() + 500)
	forge(s, &coherence.Msg{Type: coherence.HUnblock, Addr: 0x2000, Src: s.Caches[1].ID(),
		Dst: NodeDir, Shared: true})
	s.Eng.RunUntilQuiet()
	// Ownership must NOT have moved to the GetSOnly requestor, and the
	// previous owner must have been downgraded out of M (it answered the
	// Fwd_GetSOnly with data).
	if got := s.Dir.Owner(0x2000); got == s.Caches[1].ID() {
		t.Fatal("GetSOnly produced ownership")
	}
	if s.Dir.Outstanding() != 0 {
		t.Fatal("directory wedged after GetSOnly")
	}
	_, st, _, _ := s.Caches[0].AuditLine(0x2000)
	if st != CO {
		t.Fatalf("previous owner state = %v, want O (supplied data, kept ownership)", st)
	}
}

// TestMultiDataToleratedWithMods: §3.2.1 — the requestor counts
// responses rather than acks, so duplicate data is absorbed.
func TestMultiDataToleratedWithMods(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TxnMods = true
	s := NewSystem(2, cfg, 4)
	// Start a load and inject an extra data response mid-transaction.
	s.Seqs[0].Load(0x3000, nil)
	s.Eng.RunUntil(30) // the broadcast is in flight
	forge(s, &coherence.Msg{Type: coherence.HData, Addr: 0x3000, Src: s.Caches[1].ID(),
		Dst: s.Caches[0].ID(), Data: s.Mem.Read(0x3000), Dirty: false, Shared: true})
	s.Eng.RunUntilQuiet()
	if s.Log.ByCode["HOST.MultiData"] == 0 {
		t.Skip("injection missed the window; nothing to tolerate")
	}
	// The system must still be live.
	var got byte
	s.Seqs[0].Load(0x3000, func(op *seq.Op) { got = op.Result })
	s.Eng.RunUntilQuiet()
	_ = got
	if s.Outstanding() != 0 {
		t.Fatal("transaction wedged after duplicate data")
	}
}
