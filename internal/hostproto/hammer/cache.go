package hammer

import (
	"fmt"

	"crossingguard/internal/cacheset"
	"crossingguard/internal/coherence"
	"crossingguard/internal/mem"
	"crossingguard/internal/network"
	"crossingguard/internal/sim"
)

// cLine is the protocol payload of one private-cache line.
type cLine struct {
	state CState
	data  *mem.Block
	dirty bool // modified relative to memory
	// Open-transaction bookkeeping (response counting).
	expected  int
	got       int
	dataCount int
	shared    bool
	cacheData *mem.Block
	cacheDirt bool
	memData   *mem.Block
	noExcl    bool // GetS_only: never take E
	op        *coherence.Msg
}

// Cache is a private combined L1/L2 in the Hammer-like protocol.
type Cache struct {
	id   coherence.NodeID
	name string
	eng  *sim.Engine
	fab  *network.Fabric
	cfg  Config
	dir  coherence.NodeID
	sink coherence.ErrorSink
	// responses is how many responses every request collects:
	// one per peer cache plus the speculative memory data.
	responses int

	cache      *cacheset.Cache[cLine]
	wb         map[mem.Addr]*cLine
	waitingOps map[mem.Addr][]*coherence.Msg
	stalledOps []*coherence.Msg

	// Cov records (state, event) coverage.
	Cov *coherence.Coverage
	// NacksSunk counts unexpected Nacks tolerated under TxnMods.
	NacksSunk uint64
}

// NewCache builds and registers a private cache. responses must be
// (number of peer caches) + 1.
func NewCache(id coherence.NodeID, name string, eng *sim.Engine, fab *network.Fabric,
	dir coherence.NodeID, responses int, cfg Config, sink coherence.ErrorSink) *Cache {
	c := &Cache{
		id: id, name: name, eng: eng, fab: fab, cfg: cfg, dir: dir, sink: sink,
		responses:  responses,
		cache:      cacheset.New[cLine](cfg.Sets, cfg.Ways),
		wb:         make(map[mem.Addr]*cLine),
		waitingOps: make(map[mem.Addr][]*coherence.Msg),
		Cov:        NewCacheCoverage(),
	}
	fab.Register(c)
	return c
}

// NewCacheCoverage declares reachable (state, event) pairs.
func NewCacheCoverage() *coherence.Coverage {
	cov := coherence.NewCoverage("hammer.cache")
	type pe struct{ s, e string }
	var pairs []pe
	for _, s := range []string{"I", "S", "E", "O", "M"} {
		pairs = append(pairs, pe{s, evLoad}, pe{s, evStore})
	}
	for _, s := range []string{"S", "E", "O", "M"} {
		pairs = append(pairs, pe{s, evReplacement})
	}
	for _, s := range []string{"I", "S", "E", "O", "M", "IS", "IM", "SM", "OM", "MI", "OI", "EI", "II"} {
		pairs = append(pairs, pe{s, "H:FwdGetS"}, pe{s, "H:FwdGetSOnly"}, pe{s, "H:FwdGetM"})
	}
	for _, s := range []string{"IS", "IM", "SM", "OM"} {
		pairs = append(pairs, pe{s, "H:Data"}, pe{s, "H:Ack"}, pe{s, "H:MemData"})
	}
	for _, s := range []string{"MI", "OI", "EI"} {
		pairs = append(pairs, pe{s, "H:WBAck"})
	}
	pairs = append(pairs, pe{"II", "H:Nack"}, pe{"II", "H:WBAck"})
	for _, p := range pairs {
		cov.Declare(p.s, p.e)
	}
	return cov
}

// ID implements coherence.Controller.
func (c *Cache) ID() coherence.NodeID { return c.id }

// Name implements coherence.Controller.
func (c *Cache) Name() string { return c.name }

func (c *Cache) protocolError(state string, m *coherence.Msg) {
	if c.cfg.TxnMods {
		c.sink.ReportError(coherence.ProtocolError{
			Where: c.name, Code: "HOST.Cache.Unexpected", Addr: m.Addr,
			Detail: fmt.Sprintf("state %s event %v", state, m.Type),
		})
		return
	}
	panic(fmt.Sprintf("%s: unexpected %v in state %s", c.name, m, state))
}

// Recv implements coherence.Controller.
func (c *Cache) Recv(m *coherence.Msg) {
	switch m.Type {
	case coherence.ReqLoad, coherence.ReqStore:
		c.handleCPU(m)
	case coherence.HFwdGetS, coherence.HFwdGetSOnly, coherence.HFwdGetM:
		c.handleForward(m)
	case coherence.HData, coherence.HAck, coherence.HMemData:
		c.handleResponse(m)
	case coherence.HWBAck:
		c.handleWBAck(m)
	case coherence.HNack:
		c.handleNack(m)
	default:
		c.protocolError("?", m)
	}
}

func (c *Cache) send(m *coherence.Msg) { c.fab.Send(m) }

// --- CPU side ---

func (c *Cache) handleCPU(m *coherence.Msg) {
	line := m.Addr.Line()
	if _, busy := c.wb[line]; busy {
		c.waitingOps[line] = append(c.waitingOps[line], m)
		return
	}
	e := c.cache.Lookup(m.Addr)
	if e != nil && !e.V.state.Stable() {
		c.waitingOps[line] = append(c.waitingOps[line], m)
		return
	}
	isStore := m.Type == coherence.ReqStore
	ev := evLoad
	if isStore {
		ev = evStore
	}
	if e == nil {
		c.Cov.Record("I", ev)
		e = c.allocate(m)
		if e == nil {
			return
		}
		if isStore {
			c.issueGet(e, m, coherence.HGetM, CIM)
		} else {
			c.issueGet(e, m, coherence.HGetS, CIS)
		}
		return
	}
	st := e.V.state
	c.Cov.Record(st.String(), ev)
	switch {
	case !isStore: // load hit in S/E/O/M
		c.respond(m, e.V.data[m.Addr.Offset()])
	case st == CM:
		e.V.data[m.Addr.Offset()] = m.Val
		c.respond(m, 0)
	case st == CE:
		e.V.state = CM
		e.V.dirty = true
		e.V.data[m.Addr.Offset()] = m.Val
		c.respond(m, 0)
	case st == CS:
		c.issueGet(e, m, coherence.HGetM, CSM)
	case st == CO:
		c.issueGet(e, m, coherence.HGetM, COM)
	}
}

func (c *Cache) issueGet(e *cacheset.Entry[cLine], op *coherence.Msg, ty coherence.MsgType, next CState) {
	e.V.state = next
	e.V.expected = c.responses
	e.V.got = 0
	e.V.dataCount = 0
	e.V.shared = false
	e.V.cacheData = nil
	e.V.memData = nil
	e.V.noExcl = ty == coherence.HGetSOnly
	e.V.op = op
	c.send(&coherence.Msg{Type: ty, Addr: e.Addr, Src: c.id, Dst: c.dir})
}

func (c *Cache) allocate(m *coherence.Msg) *cacheset.Entry[cLine] {
	e, victim, ok := c.cache.Allocate(m.Addr, func(e *cacheset.Entry[cLine]) bool {
		return e.V.state.Stable()
	})
	if !ok {
		c.stalledOps = append(c.stalledOps, m)
		return nil
	}
	if victim != nil {
		c.evict(victim.Addr, &victim.V)
	}
	e.V = cLine{state: CI}
	return e
}

func (c *Cache) evict(addr mem.Addr, v *cLine) {
	c.Cov.Record(v.state.String(), evReplacement)
	switch v.state {
	case CS:
		// Hammer allows silent eviction of shared blocks.
	case CM, CO, CE:
		next := map[CState]CState{CM: CMI, CO: COI, CE: CEI}[v.state]
		c.wb[addr] = &cLine{state: next, data: v.data, dirty: v.dirty}
		c.send(&coherence.Msg{Type: coherence.HPut, Addr: addr, Src: c.id, Dst: c.dir})
	default:
		panic(fmt.Sprintf("%s: evicting line in state %v", c.name, v.state))
	}
}

func (c *Cache) respond(op *coherence.Msg, val byte) {
	ty := coherence.RespLoad
	if op.Type == coherence.ReqStore {
		ty = coherence.RespStore
	}
	c.eng.Schedule(c.cfg.HitLat, func() {
		c.fab.Send(&coherence.Msg{Type: ty, Addr: op.Addr, Src: c.id, Dst: op.Src,
			Val: val, Tag: op.Tag})
	})
}

// --- forwards (broadcast requests from the directory) ---

func (c *Cache) handleForward(m *coherence.Msg) {
	line := m.Addr.Line()
	var st CState
	var data *mem.Block
	var dirty bool
	var e *cacheset.Entry[cLine]
	wl, inWB := c.wb[line]
	if inWB {
		st, data, dirty = wl.state, wl.data, wl.dirty
	} else if e = c.cache.Peek(m.Addr); e != nil {
		st, data, dirty = e.V.state, e.V.data, e.V.dirty
	} else {
		st = CI
	}
	c.Cov.Record(st.String(), evName(m.Type))

	getM := m.Type == coherence.HFwdGetM
	if st.owned() {
		c.send(&coherence.Msg{Type: coherence.HData, Addr: line, Src: c.id, Dst: m.Requestor,
			Data: data.Copy(), Dirty: dirty, Shared: true})
		switch {
		case getM:
			// Ownership moves to the requestor.
			switch st {
			case CM, CO, CE:
				c.cache.Invalidate(m.Addr)
				c.settled(line)
			case COM:
				e.V.state = CIM // lost our copy; our own GetM is still queued
			case CMI, COI, CEI:
				wl.state = CII
			}
		default: // FwdGetS / FwdGetSOnly: owner downgrades to O, keeps data
			switch st {
			case CM, CE:
				e.V.state = CO
				// CO, COM, CMI, COI, CEI: unchanged; still the owner.
			}
		}
		return
	}
	// Non-owners ack, asserting Shared when they hold an S copy.
	hasS := st == CS || st == CSM
	c.send(&coherence.Msg{Type: coherence.HAck, Addr: line, Src: c.id, Dst: m.Requestor,
		Shared: hasS && !getM})
	if getM {
		switch st {
		case CS:
			c.cache.Invalidate(m.Addr)
			c.settled(line)
		case CSM:
			e.V.state = CIM
		}
	}
}

// --- responses to our own requests ---

func (c *Cache) handleResponse(m *coherence.Msg) {
	e := c.cache.Peek(m.Addr)
	if e == nil || e.V.op == nil {
		c.protocolError("I", m)
		return
	}
	st := e.V.state
	switch st {
	case CIS, CIM, CSM, COM:
	default:
		c.protocolError(st.String(), m)
		return
	}
	c.Cov.Record(st.String(), evName(m.Type))
	switch m.Type {
	case coherence.HData:
		e.V.dataCount++
		if e.V.dataCount > 1 && !c.cfg.TxnMods {
			panic(fmt.Sprintf("%s: multiple data responses for %v", c.name, m.Addr))
		}
		if e.V.dataCount > 1 {
			c.sink.ReportError(coherence.ProtocolError{Where: c.name,
				Code: "HOST.MultiData", Addr: m.Addr, Detail: "duplicate data response tolerated"})
		}
		if e.V.cacheData == nil && m.Data != nil {
			e.V.cacheData = m.Data.Copy()
			e.V.cacheDirt = m.Dirty
		}
		e.V.shared = true // an owner elsewhere means the block is shared
	case coherence.HAck:
		if m.Shared {
			e.V.shared = true
		}
	case coherence.HMemData:
		e.V.memData = m.Data.Copy()
	}
	e.V.got++
	if e.V.got < e.V.expected {
		return
	}
	c.completeGet(e)
}

func (c *Cache) completeGet(e *cacheset.Entry[cLine]) {
	op := e.V.op
	st := e.V.state
	var data *mem.Block
	var dirty bool
	switch {
	case st == COM:
		// We are the owner: our copy is authoritative.
		data, dirty = e.V.data, e.V.dirty
	case e.V.cacheData != nil:
		data, dirty = e.V.cacheData, e.V.cacheDirt
	case e.V.memData != nil:
		data, dirty = e.V.memData, false
	default:
		// Response-counting tolerance: every response was an ack and
		// even memory data is missing (possible only under fuzzing with
		// TxnMods); complete with a zero block.
		if !c.cfg.TxnMods {
			panic(fmt.Sprintf("%s: request for %v completed without data", c.name, e.Addr))
		}
		c.sink.ReportError(coherence.ProtocolError{Where: c.name,
			Code: "HOST.NoData", Addr: e.Addr, Detail: "request completed with zero block"})
		data, dirty = mem.Zero(), false
	}
	tookShared := false
	if st == CIS {
		if e.V.shared || e.V.noExcl {
			e.V.state = CS
			tookShared = true
		} else {
			e.V.state = CE
		}
		e.V.data = data.Copy()
		e.V.dirty = dirty
		if tookShared {
			e.V.dirty = false // the owner retains responsibility
		}
		c.respond(op, e.V.data[op.Addr.Offset()])
	} else {
		e.V.state = CM
		e.V.data = data.Copy()
		e.V.dirty = true
		e.V.data[op.Addr.Offset()] = op.Val
		c.respond(op, 0)
	}
	e.V.op = nil
	e.V.cacheData = nil
	e.V.memData = nil
	c.send(&coherence.Msg{Type: coherence.HUnblock, Addr: e.Addr, Src: c.id, Dst: c.dir,
		Shared: tookShared})
	c.settled(e.Addr)
}

// --- writeback acks and nacks ---

func (c *Cache) handleWBAck(m *coherence.Msg) {
	line := m.Addr.Line()
	wl, ok := c.wb[line]
	if !ok {
		c.protocolError("I", m)
		return
	}
	c.Cov.Record(wl.state.String(), evName(m.Type))
	switch wl.state {
	case CMI, COI, CEI:
		c.send(&coherence.Msg{Type: coherence.HWBData, Addr: line, Src: c.id, Dst: c.dir,
			Data: wl.data.Copy(), Dirty: wl.dirty})
		delete(c.wb, line)
		c.settled(line)
	case CII:
		// We no longer own the block; the WBAck is for a Put the
		// directory accepted before ownership moved — complete with a
		// clean (ignored) writeback so the directory can close.
		c.send(&coherence.Msg{Type: coherence.HWBData, Addr: line, Src: c.id, Dst: c.dir,
			Data: wl.data.Copy(), Dirty: false})
		delete(c.wb, line)
		c.settled(line)
	default:
		c.protocolError(wl.state.String(), m)
	}
}

func (c *Cache) handleNack(m *coherence.Msg) {
	line := m.Addr.Line()
	if wl, ok := c.wb[line]; ok {
		c.Cov.Record(wl.state.String(), evName(m.Type))
		if wl.state == CII {
			// Normal race resolution: ownership moved while our Put was
			// queued; the data already went to the new owner.
			delete(c.wb, line)
			c.settled(line)
			return
		}
		// A Nack in MI/OI/EI means the directory disagrees about
		// ownership without us having seen a FwdGetM: impossible in a
		// correct system, possible after accelerator-corrupted state.
		if !c.cfg.TxnMods {
			panic(fmt.Sprintf("%s: Nack in %v for %v", c.name, wl.state, line))
		}
		c.NacksSunk++
		c.sink.ReportError(coherence.ProtocolError{Where: c.name,
			Code: "HOST.UnexpectedNack", Addr: line,
			Detail: fmt.Sprintf("Nack sunk in state %v; dropping writeback", wl.state)})
		delete(c.wb, line)
		c.settled(line)
		return
	}
	// Paper §3.2.1: host caches must sink unexpected Nacks and raise an
	// error instead of crashing.
	st := "I"
	if e := c.cache.Peek(m.Addr); e != nil {
		st = e.V.state.String()
	}
	c.Cov.Record(st, evName(m.Type))
	if !c.cfg.TxnMods {
		panic(fmt.Sprintf("%s: unexpected Nack in state %s for %v", c.name, st, line))
	}
	c.NacksSunk++
	c.sink.ReportError(coherence.ProtocolError{Where: c.name,
		Code: "HOST.UnexpectedNack", Addr: line, Detail: "Nack sunk in state " + st})
}

// --- wakeups, audit ---

func (c *Cache) settled(line mem.Addr) {
	if q := c.waitingOps[line]; len(q) > 0 {
		next := q[0]
		if len(q) == 1 {
			delete(c.waitingOps, line)
		} else {
			c.waitingOps[line] = q[1:]
		}
		c.eng.Schedule(0, func() { c.handleCPU(next) })
	}
	if len(c.stalledOps) > 0 {
		stalled := c.stalledOps
		c.stalledOps = nil
		for _, op := range stalled {
			op := op
			c.eng.Schedule(0, func() { c.handleCPU(op) })
		}
	}
}

// Outstanding reports open transactions.
func (c *Cache) Outstanding() int {
	n := len(c.wb) + len(c.stalledOps)
	for _, q := range c.waitingOps {
		n += len(q)
	}
	c.cache.Visit(func(e *cacheset.Entry[cLine]) {
		if !e.V.state.Stable() {
			n++
		}
	})
	return n
}

// AuditLine reports the stable view for invariant checks.
func (c *Cache) AuditLine(addr mem.Addr) (present bool, st CState, data *mem.Block, dirty bool) {
	e := c.cache.Peek(addr)
	if e == nil || !e.V.state.Stable() || e.V.state == CI {
		return false, CI, nil, false
	}
	return true, e.V.state, e.V.data, e.V.dirty
}

// VisitStable reports every stable valid line for invariant checks.
func (c *Cache) VisitStable(fn func(addr mem.Addr, st CState, data *mem.Block, dirty bool)) {
	c.cache.Visit(func(e *cacheset.Entry[cLine]) {
		if e.V.state.Stable() && e.V.state != CI {
			fn(e.Addr, e.V.state, e.V.data, e.V.dirty)
		}
	})
}

// WBPending reports buffered writebacks (zero at quiesce).
func (c *Cache) WBPending() int { return len(c.wb) }
