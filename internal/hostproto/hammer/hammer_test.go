package hammer

import (
	"testing"

	"crossingguard/internal/coherence"
	"crossingguard/internal/mem"
	"crossingguard/internal/seq"
	"crossingguard/internal/tester"
)

func smallConfig() Config {
	c := DefaultConfig()
	c.Sets, c.Ways = 2, 2
	return c
}

func run(t *testing.T, s *System) {
	t.Helper()
	s.Eng.RunUntilQuiet()
	if n := s.Outstanding(); n != 0 {
		t.Fatalf("%d transactions outstanding after quiesce", n)
	}
	if err := s.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func TestSingleCPULoadStore(t *testing.T) {
	s := NewSystem(1, DefaultConfig(), 1)
	var v byte
	s.Seqs[0].Store(0x1000, 7, nil)
	s.Seqs[0].Load(0x1000, func(op *seq.Op) { v = op.Result })
	run(t, s)
	if v != 7 {
		t.Fatalf("loaded %d, want 7", v)
	}
}

func TestExclusiveGrantWhenUnshared(t *testing.T) {
	s := NewSystem(2, DefaultConfig(), 2)
	s.Seqs[0].Load(0x2000, nil)
	run(t, s)
	_, st, _, _ := s.Caches[0].AuditLine(0x2000)
	if st != CE {
		t.Fatalf("lone reader state = %v, want E", st)
	}
	if s.Dir.Owner(0x2000) != s.Caches[0].ID() {
		t.Fatal("directory did not record the E holder as owner")
	}
}

func TestOwnerDowngradesToOOnGetS(t *testing.T) {
	s := NewSystem(2, DefaultConfig(), 3)
	s.Seqs[0].Store(0x3000, 5, nil) // cache0 -> M
	run(t, s)
	var got byte
	s.Seqs[1].Load(0x3000, func(op *seq.Op) { got = op.Result })
	run(t, s)
	if got != 5 {
		t.Fatalf("reader got %d, want 5 (cache-to-cache transfer)", got)
	}
	_, st0, _, _ := s.Caches[0].AuditLine(0x3000)
	_, st1, _, _ := s.Caches[1].AuditLine(0x3000)
	if st0 != CO || st1 != CS {
		t.Fatalf("states after GetS-to-owner: %v/%v, want O/S", st0, st1)
	}
	// The O copy is dirty: memory must not yet have been updated.
	if mb := s.Mem.Peek(0x3000); mb != nil && mb[0] == 5 {
		t.Fatal("memory updated prematurely; O should hold dirty data")
	}
}

func TestUpgradeFromO(t *testing.T) {
	s := NewSystem(3, DefaultConfig(), 4)
	s.Seqs[0].Store(0x4000, 1, nil)
	run(t, s)
	s.Seqs[1].Load(0x4000, nil) // cache0 -> O, cache1 -> S
	run(t, s)
	s.Seqs[0].Store(0x4000, 2, nil) // O -> OM -> M, invalidating cache1
	run(t, s)
	_, st0, data0, _ := s.Caches[0].AuditLine(0x4000)
	if st0 != CM || data0[0] != 2 {
		t.Fatalf("upgrader: %v data=%v", st0, data0[0])
	}
	if p, _, _, _ := s.Caches[1].AuditLine(0x4000); p {
		t.Fatal("old sharer not invalidated")
	}
	var got byte
	s.Seqs[2].Load(0x4000, func(op *seq.Op) { got = op.Result })
	run(t, s)
	if got != 2 {
		t.Fatalf("third core read %d, want 2", got)
	}
}

func TestWritebackUpdatesMemory(t *testing.T) {
	cfg := smallConfig()
	s := NewSystem(1, cfg, 5)
	// Fill one set (2 ways) and overflow to force a dirty writeback.
	for i := 0; i < 3; i++ {
		s.Seqs[0].Store(mem.Addr(0x8000+i*128), byte(i+1), nil)
	}
	run(t, s)
	for i := 0; i < 3; i++ {
		var got byte
		s.Seqs[0].Load(mem.Addr(0x8000+i*128), func(op *seq.Op) { got = op.Result })
		run(t, s)
		if got != byte(i+1) {
			t.Fatalf("line %d lost on eviction: got %d", i, got)
		}
	}
}

func TestSilentSharedEviction(t *testing.T) {
	// Evicting an S line must generate no Put traffic (hammer allows
	// silent eviction; this is why XG drops PutS for this host).
	cfg := smallConfig()
	s := NewSystem(2, cfg, 6)
	s.Seqs[1].Store(0xa000, 9, nil) // cache1 owns
	run(t, s)
	s.Seqs[0].Load(0xa000, nil) // cache0 -> S
	run(t, s)
	putsBefore := s.Fab.StatsFor(s.Caches[0].ID(), NodeDir).MsgsByType[coherence.HPut]
	// Force eviction of the S line from cache0.
	s.Seqs[0].Load(0xa000+2*64, nil)
	s.Seqs[0].Load(0xa000+4*64, nil)
	run(t, s)
	putsAfter := s.Fab.StatsFor(s.Caches[0].ID(), NodeDir).MsgsByType[coherence.HPut]
	if putsAfter != putsBefore {
		t.Fatalf("S eviction sent %d Puts; hammer evicts S silently", putsAfter-putsBefore)
	}
}

func TestNackOnRacingPut(t *testing.T) {
	// Force the Put/GetM race: cache0 holds M and evicts at the same
	// time as cache1 writes. With per-pair FIFO channels the directory
	// resolves it with a Nack to cache0 in II.
	s := NewSystem(2, smallConfig(), 7)
	s.Seqs[0].Store(0xb000, 1, nil)
	run(t, s)
	// Queue the conflicting operations in the same tick: cache0's
	// eviction (via conflicting fills) and cache1's store.
	s.Seqs[0].Store(0xb000+2*64, 2, nil)
	s.Seqs[0].Store(0xb000+4*64, 3, nil) // evicts 0xb000 (Put)
	s.Seqs[1].Store(0xb000, 4, nil)      // GetM racing the Put
	run(t, s)
	var got byte
	s.Seqs[0].Load(0xb000, func(op *seq.Op) { got = op.Result })
	run(t, s)
	if got != 4 {
		t.Fatalf("after racing put, read %d, want 4", got)
	}
}

func TestStressSmall(t *testing.T) {
	for seedBase := int64(0); seedBase < 3; seedBase++ {
		for _, ncpu := range []int{1, 2, 4} {
			s := NewSystem(ncpu, smallConfig(), 300+seedBase)
			cfg := tester.DefaultConfig(400 + seedBase)
			cfg.StoresPerLoc = 30
			res, err := tester.Run(s, cfg)
			if err != nil {
				t.Fatalf("ncpu=%d seed=%d: %v", ncpu, seedBase, err)
			}
			if res.Stores == 0 {
				t.Fatalf("stress did nothing: %+v", res)
			}
			if s.Log.Count() != 0 {
				t.Fatalf("baseline stress reported protocol errors: %v", s.Log.Errors[0])
			}
		}
	}
}

func TestStressContended(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress")
	}
	s := NewSystem(4, smallConfig(), 52)
	cfg := tester.Config{
		Seed: 53, Lines: 2, LocsPerLine: 4, StoresPerLoc: 100,
		LoadsPerStore: 3, BaseAddr: 0x40000, Deadline: 50_000_000,
	}
	if _, err := tester.Run(s, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStressCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("long stress")
	}
	s := NewSystem(4, smallConfig(), 88)
	cfg := tester.DefaultConfig(89)
	cfg.StoresPerLoc = 200
	if _, err := tester.Run(s, cfg); err != nil {
		t.Fatal(err)
	}
	for _, cov := range s.Coverage() {
		if len(cov.Unexpected) != 0 {
			t.Errorf("%s: unexpected transitions: %v", cov.Name(), cov.Unexpected)
		}
		t.Logf("%s", cov.Summary())
	}
}
