package hammer

import (
	"fmt"

	"crossingguard/internal/cacheset"
	"crossingguard/internal/coherence"
	"crossingguard/internal/mem"
	"crossingguard/internal/network"
	"crossingguard/internal/seq"
	"crossingguard/internal/sim"
)

// Node id layout for Hammer systems.
const (
	NodeDir   coherence.NodeID = 1
	NodeCache coherence.NodeID = 10  // cache i is NodeCache + i
	NodeSeq   coherence.NodeID = 100 // sequencer i is NodeSeq + i
)

// System is a CPU-only Hammer machine: sequencers -> private caches ->
// broadcast directory -> memory.
type System struct {
	Eng    *sim.Engine
	Fab    *network.Fabric
	Mem    *mem.Memory
	Dir    *Directory
	Caches []*Cache
	Seqs   []*seq.Sequencer
	Log    *coherence.ErrorLog
}

// NewSystem wires nCPU cores with the given protocol configuration.
func NewSystem(nCPU int, cfg Config, seed int64) *System {
	eng := sim.NewEngine()
	fab := network.NewFabric(eng, seed, network.Config{Latency: 10, Jitter: 4, Ordered: true})
	memory := mem.NewMemory()
	log := coherence.NewErrorLog()
	s := &System{Eng: eng, Fab: fab, Mem: memory, Log: log}
	s.Dir = NewDirectory(NodeDir, "hammer.dir", eng, fab, memory, cfg, log)
	responses := nCPU // (nCPU-1 peers) + 1 memory response
	for i := 0; i < nCPU; i++ {
		c := NewCache(NodeCache+coherence.NodeID(i), fmt.Sprintf("hammer.C[%d]", i),
			eng, fab, NodeDir, responses, cfg, log)
		s.Caches = append(s.Caches, c)
		s.Dir.AddPeer(c.ID())
		sq := seq.New(NodeSeq+coherence.NodeID(i), fmt.Sprintf("cpu[%d]", i), eng, fab, c.ID())
		s.Seqs = append(s.Seqs, sq)
		fab.SetRoutePair(sq.ID(), c.ID(), network.Config{Latency: 1, Ordered: true})
	}
	return s
}

// Engine implements tester.System.
func (s *System) Engine() *sim.Engine { return s.Eng }

// Sequencers implements tester.System.
func (s *System) Sequencers() []*seq.Sequencer { return s.Seqs }

// Outstanding implements tester.System.
func (s *System) Outstanding() int {
	n := s.Dir.Outstanding()
	for _, c := range s.Caches {
		n += c.Outstanding()
	}
	for _, sq := range s.Seqs {
		n += sq.Outstanding()
	}
	return n
}

// Audit implements tester.System, checking MOESI invariants at quiesce.
func (s *System) Audit() error { return AuditHammer(s.Caches, s.Dir) }

// AuditHammer checks the MOESI single-owner and data-agreement invariants
// over any set of Hammer caches and their directory.
func AuditHammer(caches []*Cache, dir *Directory) error {
	type holder struct {
		c     *Cache
		state CState
		data  *mem.Block
		dirty bool
	}
	lines := make(map[mem.Addr][]holder)
	for _, c := range caches {
		c := c
		if n := len(c.wb); n != 0 {
			return fmt.Errorf("%s: %d writebacks still buffered at quiesce", c.name, n)
		}
		c.cache.Visit(func(e *cacheset.Entry[cLine]) {
			if !e.V.state.Stable() || e.V.state == CI {
				return
			}
			lines[e.Addr] = append(lines[e.Addr], holder{c, e.V.state, e.V.data, e.V.dirty})
		})
	}
	for addr, hs := range lines {
		var owner *holder
		exclusive := 0
		sharers := 0
		for i := range hs {
			switch hs[i].state {
			case CM, CE:
				exclusive++
				owner = &hs[i]
			case CO:
				if owner != nil {
					return fmt.Errorf("SWMR violated at %v: multiple owners", addr)
				}
				owner = &hs[i]
			case CS:
				sharers++
			}
		}
		if exclusive > 1 {
			return fmt.Errorf("SWMR violated at %v: %d M/E holders", addr, exclusive)
		}
		if exclusive == 1 && sharers > 0 {
			return fmt.Errorf("SWMR violated at %v: M/E coexists with %d sharers", addr, sharers)
		}
		// Directory owner agreement.
		dOwner := dir.Owner(addr)
		if owner != nil && dOwner != owner.c.id {
			return fmt.Errorf("%v: cache %s owns (%v) but directory records %d",
				addr, owner.c.name, owner.state, dOwner)
		}
		if owner == nil && dOwner != coherence.NodeNone {
			return fmt.Errorf("%v: directory records owner %d but nobody owns", addr, dOwner)
		}
		// Data agreement: sharers match the owner (or memory).
		ref := dir.Memory().Peek(addr)
		if owner != nil {
			ref = owner.data
		}
		for _, h := range hs {
			if h.state == CS && !mem.Equal(h.data, ref) {
				return fmt.Errorf("data divergence at %v: sharer %s disagrees with %s",
					addr, h.c.name, map[bool]string{true: "owner", false: "memory"}[owner != nil])
			}
		}
		// A clean owner (E, or O-from-E) must match memory.
		if owner != nil && !owner.dirty {
			if mb := dir.Memory().Peek(addr); mb != nil && !mem.Equal(owner.data, mb) {
				return fmt.Errorf("clean owner of %v disagrees with memory", addr)
			}
		}
	}
	return nil
}

// Coverage returns merged coverage across controller classes.
func (s *System) Coverage() []*coherence.Coverage {
	ccov := NewCacheCoverage()
	for _, c := range s.Caches {
		ccov.Merge(c.Cov)
	}
	return []*coherence.Coverage{ccov, s.Dir.Cov}
}
