// Package hammer implements the AMD-Hammer-like exclusive MOESI host
// protocol (modeled on gem5's MOESI_hammer, the paper's first baseline
// host): per-CPU private combined L1/L2 caches, and a directory+memory
// controller that keeps only an owner pointer and broadcasts every
// request to all peer caches. Every peer answers every forward (data if
// owner, ack otherwise), memory answers speculatively, and the requestor
// counts responses — the complexity Crossing Guard hides from
// accelerators (paper §2.4).
//
// Properties the paper relies on (§3.2.1):
//   - a request frequently triggers a response from every other cache;
//   - non-exclusive owned state O; GetS to an owner downgrades it to O;
//   - two-part writebacks (Put -> WBAck -> WBData);
//   - directory Nacks Puts from non-owners (a legitimate race);
//   - silent eviction of S blocks (so Crossing Guard drops PutS);
//   - host modifications for Transactional Crossing Guard: a
//     non-upgradable GetS_only/Fwd_GetS_only pair, caches sink unexpected
//     Nacks, and requestors count responses rather than acks (TxnMods).
package hammer

import (
	"crossingguard/internal/coherence"
	"crossingguard/internal/sim"
)

// CState is the per-line state of a private cache.
type CState int

const (
	CI CState = iota
	CS
	CE
	CO
	CM
	// Transients.
	CIS // GetS outstanding
	CIM // GetM outstanding
	CSM // GetM outstanding from S
	COM // GetM outstanding from O (upgrade; own data is authoritative)
	CMI // Put outstanding from M (dirty)
	COI // Put outstanding from O (dirty)
	CEI // Put outstanding from E (clean)
	CII // ownership lost while Put outstanding
)

var cStateNames = [...]string{
	CI: "I", CS: "S", CE: "E", CO: "O", CM: "M",
	CIS: "IS", CIM: "IM", CSM: "SM", COM: "OM",
	CMI: "MI", COI: "OI", CEI: "EI", CII: "II",
}

func (s CState) String() string { return cStateNames[s] }

// Stable reports whether s is a MOESI stable state.
func (s CState) Stable() bool { return s <= CM }

// owned reports whether this state must supply data to forwards.
func (s CState) owned() bool {
	switch s {
	case CM, CO, CE, COM, CMI, COI, CEI:
		return true
	}
	return false
}

// dirtyWB reports whether data written back from this state is modified
// relative to memory.
func (s CState) dirtyWB() bool {
	switch s {
	case CM, CO, COM, CMI, COI:
		return true
	}
	return false
}

// Config parameterizes a Hammer host instance.
type Config struct {
	Sets, Ways int
	// Latencies in ticks.
	HitLat sim.Time // cache hit latency
	DirLat sim.Time // directory lookup latency
	MemLat sim.Time // memory access latency
	// TxnMods enables the host-protocol modifications required by
	// Transactional Crossing Guard (paper §3.2.1).
	TxnMods bool
}

// DefaultConfig returns the geometry/latency set used by the benchmarks.
func DefaultConfig() Config {
	return Config{Sets: 128, Ways: 4, HitLat: 1, DirLat: 20, MemLat: 160}
}

const (
	evLoad        = "Load"
	evStore       = "Store"
	evReplacement = "Replacement"
)

func evName(t coherence.MsgType) string { return t.String() }

// StateInventory reports the cache's stable and transient state names,
// for the protocol-complexity comparison (experiment E2).
func StateInventory() (stable, transient []string) {
	for s := CI; s <= CII; s++ {
		if s.Stable() {
			stable = append(stable, s.String())
		} else {
			transient = append(transient, s.String())
		}
	}
	return
}
