package hammer

import (
	"fmt"

	"crossingguard/internal/coherence"
	"crossingguard/internal/mem"
	"crossingguard/internal/network"
	"crossingguard/internal/sim"
)

// dirTxnKind labels an open directory transaction.
type dirTxnKind int

const (
	dirGet dirTxnKind = iota
	dirWB
)

type dirTxn struct {
	kind      dirTxnKind
	requestor coherence.NodeID
}

// dirLine is the directory's per-line record: hammer keeps no sharer
// information, only an owner pointer (used to validate writebacks and to
// know when memory may be stale).
type dirLine struct {
	owner coherence.NodeID
	txn   *dirTxn
}

// Directory is the Hammer directory + memory controller. It serializes
// transactions per line and broadcasts every request to all peer caches.
type Directory struct {
	id    coherence.NodeID
	name  string
	eng   *sim.Engine
	fab   *network.Fabric
	cfg   Config
	sink  coherence.ErrorSink
	peers []coherence.NodeID // every cache in the system (including XG)

	memory    *mem.Memory
	lines     map[mem.Addr]*dirLine
	waiting   map[mem.Addr][]*coherence.Msg
	replaying *coherence.Msg // message being replayed from the queue head

	// Cov records (state, event) coverage.
	Cov *coherence.Coverage
	// NacksSent counts Put/ownership races resolved by Nack.
	NacksSent uint64
}

// NewDirectory builds and registers the directory over memory.
func NewDirectory(id coherence.NodeID, name string, eng *sim.Engine, fab *network.Fabric,
	memory *mem.Memory, cfg Config, sink coherence.ErrorSink) *Directory {
	d := &Directory{
		id: id, name: name, eng: eng, fab: fab, cfg: cfg, sink: sink,
		memory:  memory,
		lines:   make(map[mem.Addr]*dirLine),
		waiting: make(map[mem.Addr][]*coherence.Msg),
		Cov:     NewDirectoryCoverage(),
	}
	fab.Register(d)
	return d
}

// NewDirectoryCoverage declares reachable (state, event) pairs.
func NewDirectoryCoverage() *coherence.Coverage {
	cov := coherence.NewCoverage("hammer.dir")
	cov.DeclareAll(
		[]string{"Unowned", "Owned", "Unowned+busy", "Owned+busy"},
		[]string{"H:GetS", "H:GetSOnly", "H:GetM", "H:Put", "H:WBData", "H:Unblock"},
	)
	return cov
}

// AddPeer registers a cache for broadcast. Call once per cache before
// simulation starts.
func (d *Directory) AddPeer(id coherence.NodeID) { d.peers = append(d.peers, id) }

// Peers returns the broadcast set size.
func (d *Directory) Peers() int { return len(d.peers) }

// ID implements coherence.Controller.
func (d *Directory) ID() coherence.NodeID { return d.id }

// Name implements coherence.Controller.
func (d *Directory) Name() string { return d.name }

func (d *Directory) lineFor(addr mem.Addr) *dirLine {
	if l, ok := d.lines[addr]; ok {
		return l
	}
	l := &dirLine{owner: coherence.NodeNone}
	d.lines[addr] = l
	return l
}

func (d *Directory) stateName(l *dirLine) string {
	s := "Unowned"
	if l.owner != coherence.NodeNone {
		s = "Owned"
	}
	if l.txn != nil {
		s += "+busy"
	}
	return s
}

func (d *Directory) protocolError(state string, m *coherence.Msg) {
	if d.cfg.TxnMods {
		d.sink.ReportError(coherence.ProtocolError{
			Where: d.name, Code: "HOST.Dir.Unexpected", Addr: m.Addr,
			Detail: fmt.Sprintf("state %s event %v", state, m.Type),
		})
		return
	}
	panic(fmt.Sprintf("%s: unexpected %v in state %s", d.name, m, state))
}

// Recv implements coherence.Controller.
func (d *Directory) Recv(m *coherence.Msg) {
	addr := m.Addr.Line()
	l := d.lineFor(addr)
	d.Cov.Record(d.stateName(l), evName(m.Type))
	switch m.Type {
	case coherence.HGetS, coherence.HGetSOnly, coherence.HGetM:
		if l.txn != nil || (len(d.waiting[addr]) > 0 && m != d.replaying) {
			// Strict per-line FIFO: nothing may overtake queued requests
			// (a Get overtaking a queued Put would read stale memory).
			d.waiting[addr] = append(d.waiting[addr], m)
			return
		}
		l.txn = &dirTxn{kind: dirGet, requestor: m.Src}
		d.eng.Schedule(d.cfg.DirLat, func() { d.broadcast(m) })
	case coherence.HPut:
		if l.txn != nil || (len(d.waiting[addr]) > 0 && m != d.replaying) {
			d.waiting[addr] = append(d.waiting[addr], m)
			return
		}
		if l.owner != m.Src {
			// Put from a non-owner: a legitimate race (ownership moved
			// while the Put was in flight) or a stray accelerator Put.
			d.NacksSent++
			d.send(&coherence.Msg{Type: coherence.HNack, Addr: addr, Src: d.id, Dst: m.Src})
			d.pop(addr)
			return
		}
		l.txn = &dirTxn{kind: dirWB, requestor: m.Src}
		d.eng.Schedule(d.cfg.DirLat, func() {
			d.send(&coherence.Msg{Type: coherence.HWBAck, Addr: addr, Src: d.id, Dst: m.Src})
		})
	case coherence.HWBData:
		if l.txn == nil || l.txn.kind != dirWB || l.txn.requestor != m.Src {
			d.protocolError(d.stateName(l), m)
			return
		}
		if m.Dirty && m.Data != nil {
			d.memory.Write(addr, m.Data)
		}
		l.owner = coherence.NodeNone
		l.txn = nil
		d.pop(addr)
	case coherence.HUnblock:
		if l.txn == nil || l.txn.kind != dirGet || l.txn.requestor != m.Src {
			d.protocolError(d.stateName(l), m)
			return
		}
		if !m.Shared {
			// The requestor took an owned state (E or M).
			l.owner = m.Src
		}
		l.txn = nil
		d.pop(addr)
	default:
		d.protocolError(d.stateName(l), m)
	}
}

// broadcast forwards a Get to every peer except the requestor and issues
// the speculative memory read.
func (d *Directory) broadcast(m *coherence.Msg) {
	addr := m.Addr.Line()
	var fwd coherence.MsgType
	switch m.Type {
	case coherence.HGetS:
		fwd = coherence.HFwdGetS
	case coherence.HGetSOnly:
		fwd = coherence.HFwdGetSOnly
	case coherence.HGetM:
		fwd = coherence.HFwdGetM
	}
	for _, p := range d.peers {
		if p == m.Src {
			continue
		}
		d.send(&coherence.Msg{Type: fwd, Addr: addr, Src: d.id, Dst: p, Requestor: m.Src})
	}
	d.eng.Schedule(d.cfg.MemLat, func() {
		d.send(&coherence.Msg{Type: coherence.HMemData, Addr: addr, Src: d.id, Dst: m.Src,
			Data: d.memory.Read(addr)})
	})
}

func (d *Directory) send(m *coherence.Msg) { d.fab.Send(m) }

func (d *Directory) pop(addr mem.Addr) {
	q := d.waiting[addr]
	if len(q) == 0 {
		return
	}
	next := q[0]
	if len(q) == 1 {
		delete(d.waiting, addr)
	} else {
		d.waiting[addr] = q[1:]
	}
	// Process synchronously so no same-tick arrival can cut in front.
	prev := d.replaying
	d.replaying = next
	d.Recv(next)
	d.replaying = prev
}

// Outstanding reports open transactions and queued requests.
func (d *Directory) Outstanding() int {
	n := 0
	for _, q := range d.waiting {
		n += len(q)
	}
	for _, l := range d.lines {
		if l.txn != nil {
			n++
		}
	}
	return n
}

// Owner reports the recorded owner of a line (for audits).
func (d *Directory) Owner(addr mem.Addr) coherence.NodeID {
	if l, ok := d.lines[addr.Line()]; ok {
		return l.owner
	}
	return coherence.NodeNone
}

// Memory exposes the backing store for checkers.
func (d *Directory) Memory() *mem.Memory { return d.memory }

// VisitOwned reports every line with a recorded owner.
func (d *Directory) VisitOwned(fn func(addr mem.Addr, owner coherence.NodeID)) {
	for a, l := range d.lines {
		if l.owner != coherence.NodeNone {
			fn(a, l.owner)
		}
	}
}
